//! Physical-IR differential suite: `hive.exec.pir.enabled` may only
//! change how Filter/Project chains, scan predicates, aggregate
//! accumulators, and join residuals execute (fused compiled pipelines
//! versus the per-batch interpreter), never results.
//! Every curated TPC-DS query must return byte-identical rows with PIR
//! on and off — fault-free, under a seeded fault plan with recovery
//! (including an exact replay of the simulated fault penalty), and
//! across the 1/2/8 thread sweep. Property tests then drive randomly
//! generated predicate trees — mixed-scale decimal literals, NULL
//! literals, CASE-produced NULLs, nested AND/OR/NOT — through both
//! paths and require identical row sets, both as plain filters and as
//! aggregate inputs / join residual predicates; the
//! `pir_compiled_stages`/`pir_fallback_rows` counters then prove the
//! compiled paths actually ran rather than silently falling back.

use hive_warehouse::benchdata::tpcds::{self, TpcdsScale};
use hive_warehouse::{FaultPlan, HiveConf, HiveServer};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Env knobs override the conf fields; this binary manages both itself.
fn neutralize_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::remove_var("HIVE_PIR_ENABLED");
        std::env::remove_var("HIVE_SELVEC_ENABLED");
        std::env::remove_var("HIVE_DICT_ENABLED");
        std::env::remove_var("HIVE_RAWTABLE_ENABLED");
        std::env::remove_var("HIVE_PARALLEL_THREADS");
    });
}

/// Big enough that scans span several row groups and partitions, so
/// fused scan predicates and engine-level chains both run for real.
fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 1500,
        return_rate: 0.1,
    }
}

fn load_server(pir: bool, threads: usize) -> HiveServer {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.pir_enabled = pir;
    conf.parallel_threads = threads;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

/// Every curated TPC-DS query: compiled pipelines on == off.
#[test]
fn pir_toggle_never_changes_results() {
    let queries = tpcds::queries();
    let off = load_server(false, 1);
    let on = load_server(true, 1);
    for q in &queries {
        let expected = off.session().execute(&q.sql).unwrap().display_rows();
        let got = on.session().execute(&q.sql).unwrap().display_rows();
        assert_eq!(got, expected, "{} diverged with PIR enabled", q.id);
    }
}

/// The toggle stays invisible across worker counts: the whole curated
/// suite agrees between PIR on and off at 1, 2, and 8 threads, and
/// every run equals the 1-thread interpreter baseline.
#[test]
fn pir_toggle_is_invisible_across_thread_sweep() {
    let queries = tpcds::queries();
    let baseline_server = load_server(false, 1);
    let baseline: Vec<Vec<String>> = queries
        .iter()
        .map(|q| {
            baseline_server
                .session()
                .execute(&q.sql)
                .unwrap()
                .display_rows()
        })
        .collect();
    assert!(baseline.iter().any(|rows| !rows.is_empty()));
    for threads in [2, 8] {
        for pir in [false, true] {
            let server = load_server(pir, threads);
            for (q, expected) in queries.iter().zip(&baseline) {
                let rows = server.session().execute(&q.sql).unwrap().display_rows();
                assert_eq!(
                    &rows, expected,
                    "{} diverged with pir={pir} at {threads} threads",
                    q.id
                );
            }
        }
    }
    // 1-thread PIR run against the same baseline.
    let on = load_server(true, 1);
    for (q, expected) in queries.iter().zip(&baseline) {
        let rows = on.session().execute(&q.sql).unwrap().display_rows();
        assert_eq!(&rows, expected, "{} diverged with pir at 1 thread", q.id);
    }
}

/// A seeded fault plan (daemon deaths, transient DFS errors, recovery
/// enabled) yields the fault-free rows under both settings, and the
/// simulated fault penalty replays exactly within each setting — fused
/// stages must charge the same per-stage fault rolls as the
/// interpreter's operator traces.
#[test]
fn faulted_runs_match_under_both_settings() {
    let query = &tpcds::queries()[0];
    let baseline = load_server(false, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xBADD_CAFE;
        p.daemon_kill_prob = 0.8;
        p.dfs_read_error_prob = 0.05;
        p.dfs_slow_prob = 0.1;
        p.dfs_slow_ms = 4.0;
    });
    let run = |pir: bool| -> (Vec<String>, f64, u64) {
        let server = load_server(pir, 2);
        server.set_conf(|c| c.fault = plan.clone());
        let r = server.session().execute(&query.sql).unwrap();
        (r.display_rows(), r.sim_ms, r.fragment_retries)
    };
    for pir in [false, true] {
        let (rows, sim_ms, retries) = run(pir);
        assert_eq!(rows, baseline, "faulted run diverged with pir={pir}");
        let (rows2, sim_ms2, retries2) = run(pir);
        assert_eq!(rows2, baseline);
        assert_eq!(
            (sim_ms2, retries2),
            (sim_ms, retries),
            "fault penalty must replay exactly with pir={pir}"
        );
    }
}

/// The fused fault schedule also replays identically across the two
/// settings, not just within one: same rows in, same labels, same
/// bottom-up roll order — so the charged penalty is toggle-invariant.
#[test]
fn fault_penalty_is_toggle_invariant() {
    let query = &tpcds::queries()[0];
    let plan = FaultPlan::none().with(|p| {
        p.seed = 0x5EED_F00D;
        p.dfs_slow_prob = 0.2;
        p.dfs_slow_ms = 2.5;
        p.daemon_kill_prob = 0.5;
    });
    let run = |pir: bool| -> (f64, u64) {
        let server = load_server(pir, 2);
        server.set_conf(|c| c.fault = plan.clone());
        let r = server.session().execute(&query.sql).unwrap();
        (r.sim_ms, r.fragment_retries)
    };
    assert_eq!(run(true), run(false), "fault schedule shifted under PIR");
}

// ---------------------------------------------------------------------
// Property tests: random predicate trees, fused versus interpreted.
// ---------------------------------------------------------------------

/// One PIR-on and one PIR-off server, loaded once and reused across all
/// proptest cases (loading dominates per-case cost otherwise).
fn servers() -> &'static (HiveServer, HiveServer) {
    static CELL: OnceLock<(HiveServer, HiveServer)> = OnceLock::new();
    CELL.get_or_init(|| (load_server(false, 1), load_server(true, 1)))
}

/// Integer-valued store_sales columns.
fn int_col() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("ss_quantity"),
        Just("ss_customer_sk"),
        Just("ss_item_sk"),
        Just("ss_store_sk"),
    ]
}

/// DECIMAL(7,2)-valued store_sales columns.
fn dec_col() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("ss_list_price"),
        Just("ss_net_profit"),
        Just("ss_wholesale_cost"),
    ]
}

fn cmp_op() -> impl Strategy<Value = &'static str> {
    prop_oneof![
        Just("<"),
        Just("<="),
        Just(">"),
        Just(">="),
        Just("="),
        Just("<>"),
    ]
}

/// Predicate atoms: typed comparisons (including scale-3 decimal
/// literals against scale-2 columns and NULL literals), IS [NOT] NULL,
/// and CASE expressions that *produce* NULLs so three-valued logic is
/// exercised on data that carries no stored NULLs.
fn atom() -> impl Strategy<Value = String> {
    let int_lit = prop_oneof![
        (0i64..300).prop_map(|n| n.to_string()),
        Just("NULL".to_string()),
    ];
    let dec_lit = prop_oneof![
        // Scale-3 literals: exact mixed-scale comparison territory.
        (0i64..30_000).prop_map(|n| format!("{}.{:03}", n / 1000, n % 1000)),
        (0i64..100).prop_map(|n| n.to_string()),
        Just("NULL".to_string()),
    ];
    prop_oneof![
        (int_col(), cmp_op(), int_lit).prop_map(|(c, op, l)| format!("{c} {op} {l}")),
        (dec_col(), cmp_op(), dec_lit).prop_map(|(c, op, l)| format!("{c} {op} {l}")),
        (int_col(), any::<bool>())
            .prop_map(|(c, neg)| format!("{c} IS {}NULL", if neg { "NOT " } else { "" })),
        (int_col(), 0i64..40, cmp_op(), 0i64..40).prop_map(|(c, k, op, k2)| format!(
            "(CASE WHEN {c} > {k} THEN NULL ELSE {c} END) {op} {k2}"
        )),
    ]
}

/// Random predicate trees over the atoms: AND/OR/NOT to `depth`.
fn pred(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return atom().boxed();
    }
    let inner = pred(depth - 1);
    prop_oneof![
        atom(),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
        inner.prop_map(|a| format!("(NOT {a})")),
    ]
    .boxed()
}

/// Cross-side residual atoms for `store_sales ⋈ item`: decimal×decimal
/// column comparisons (the vectorized `CmpCols` territory), mixed-scale
/// and NULL decimal literals, dict-encoded item strings (literal and
/// dict×dict), and int×int cross-side comparisons.
fn resid_atom() -> impl Strategy<Value = String> {
    let dec_lit = prop_oneof![
        // Scale-3 literals against DECIMAL(7,2) columns.
        (0i64..10_000).prop_map(|n| format!("{}.{:03}", n / 1000, n % 1000)),
        Just("NULL".to_string()),
    ];
    prop_oneof![
        (dec_col(), cmp_op()).prop_map(|(c, op)| format!("{c} {op} i_current_price")),
        (cmp_op(), dec_lit).prop_map(|(op, l)| format!("i_current_price {op} {l}")),
        (int_col(), cmp_op()).prop_map(|(c, op)| format!("{c} {op} i_manufact_id")),
        cmp_op().prop_map(|op| format!("i_category {op} 'Home'")),
        cmp_op().prop_map(|op| format!("i_brand {op} i_class")),
    ]
}

/// Random residual trees over the cross-side atoms (AND/OR/NOT).
fn resid_pred(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        return resid_atom().boxed();
    }
    let inner = resid_pred(depth - 1);
    prop_oneof![
        resid_atom(),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} AND {b})")),
        (inner.clone(), inner.clone()).prop_map(|(a, b)| format!("({a} OR {b})")),
        inner.prop_map(|a| format!("(NOT {a})")),
    ]
    .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any generated predicate returns the identical row sequence with
    /// PIR on and off — both as a pushed-down scan filter and as an
    /// engine-level filter above a projected subquery (where the fused
    /// chain includes the Project stage).
    #[test]
    fn random_predicates_agree_fused_and_interpreted(p in pred(3)) {
        let (off, on) = servers();
        let scan_sql = format!(
            "SELECT ss_ticket_number, ss_item_sk, ss_quantity \
             FROM store_sales WHERE {p}"
        );
        let expected = off.session().execute(&scan_sql).unwrap().display_rows();
        let got = on.session().execute(&scan_sql).unwrap().display_rows();
        prop_assert_eq!(&got, &expected, "scan-level divergence for {}", p);

        let chain_sql = format!(
            "SELECT t, q FROM (SELECT ss_ticket_number AS t, \
             ss_quantity + 0 AS q, ss_quantity, ss_customer_sk, \
             ss_item_sk, ss_store_sk, ss_list_price, ss_net_profit, \
             ss_wholesale_cost FROM store_sales) sub WHERE {p}"
        );
        let expected = off.session().execute(&chain_sql).unwrap().display_rows();
        let got = on.session().execute(&chain_sql).unwrap().display_rows();
        prop_assert_eq!(&got, &expected, "chain-level divergence for {}", p);
    }

    /// Any generated predicate feeding an aggregate returns identical
    /// groups with PIR on and off. The aggregate list covers every
    /// compiled accumulator — COUNT(*), COUNT(col), SUM/AVG over int
    /// and decimal, MIN/MAX — plus STDDEV_SAMP and COUNT(DISTINCT),
    /// which must take the interpreted fallback and still agree.
    #[test]
    fn random_aggregates_agree_fused_and_interpreted(p in pred(2)) {
        let (off, on) = servers();
        let sql = format!(
            "SELECT ss_store_sk, COUNT(*) AS c0, COUNT(ss_customer_sk) AS c1, \
             SUM(ss_quantity) AS s0, SUM(ss_list_price) AS s1, \
             MIN(ss_net_profit) AS m0, MAX(ss_wholesale_cost) AS m1, \
             AVG(ss_list_price) AS a0, AVG(ss_quantity) AS a1 \
             FROM store_sales WHERE {p} \
             GROUP BY ss_store_sk ORDER BY ss_store_sk"
        );
        let expected = off.session().execute(&sql).unwrap().display_rows();
        let got = on.session().execute(&sql).unwrap().display_rows();
        prop_assert_eq!(&got, &expected, "aggregate divergence for {}", p);

        let fb_sql = format!(
            "SELECT ss_store_sk, STDDEV_SAMP(ss_quantity) AS sd, \
             COUNT(DISTINCT ss_customer_sk) AS cd \
             FROM store_sales WHERE {p} \
             GROUP BY ss_store_sk ORDER BY ss_store_sk"
        );
        let expected = off.session().execute(&fb_sql).unwrap().display_rows();
        let got = on.session().execute(&fb_sql).unwrap().display_rows();
        prop_assert_eq!(&got, &expected, "fallback-aggregate divergence for {}", p);
    }

    /// Any generated residual tree over `store_sales ⋈ item` joins to
    /// the identical row sequence with PIR on and off — the compiled
    /// pair-batch conjunction versus the per-pair row interpreter.
    #[test]
    fn random_join_residuals_agree_fused_and_interpreted(p in resid_pred(2)) {
        let (off, on) = servers();
        let sql = format!(
            "SELECT ss_ticket_number, ss_item_sk, i_current_price \
             FROM store_sales JOIN item ON ss_item_sk = i_item_sk AND ({p})"
        );
        let expected = off.session().execute(&sql).unwrap().display_rows();
        let got = on.session().execute(&sql).unwrap().display_rows();
        prop_assert_eq!(&got, &expected, "residual divergence for {}", p);
    }
}

/// The counters prove the compiled paths executed: a compilable
/// aggregate and a compilable residual report compiled stages (and the
/// residual reports zero interpreted pairs), the PIR-off server reports
/// zero everywhere, and a non-compilable residual shape reports its
/// fallback pairs instead of pretending it compiled.
#[test]
fn counters_prove_compiled_paths_ran() {
    let (off, on) = servers();

    let agg_sql = "SELECT ss_store_sk, COUNT(*) AS c, SUM(ss_quantity) AS s, \
                   AVG(ss_list_price) AS a FROM store_sales \
                   WHERE ss_quantity < 50 GROUP BY ss_store_sk ORDER BY ss_store_sk";
    let r = on.session().execute(agg_sql).unwrap();
    assert!(
        r.pir_compiled_stages > 0,
        "compiled aggregate did not run (stages={})",
        r.pir_compiled_stages
    );
    let r_off = off.session().execute(agg_sql).unwrap();
    assert_eq!(
        r_off.pir_compiled_stages, 0,
        "PIR off must report no compiled stages"
    );
    assert_eq!(
        r_off.pir_fallback_rows, 0,
        "PIR off must report no fallback rows"
    );

    let join_sql = "SELECT ss_ticket_number, i_current_price FROM store_sales \
                    JOIN item ON ss_item_sk = i_item_sk \
                    AND ss_list_price > i_current_price";
    let r = on.session().execute(join_sql).unwrap();
    assert!(
        r.pir_compiled_stages > 0,
        "compiled residual did not run (stages={})",
        r.pir_compiled_stages
    );
    assert_eq!(
        r.pir_fallback_rows, 0,
        "a fully compiled residual must interpret no candidate pairs"
    );

    // Arithmetic inside the residual is not a kernel shape: the row
    // closure runs, and every candidate pair is accounted as fallback.
    let fb_sql = "SELECT ss_ticket_number FROM store_sales \
                  JOIN item ON ss_item_sk = i_item_sk \
                  AND ss_list_price + ss_wholesale_cost > i_current_price";
    let r = on.session().execute(fb_sql).unwrap();
    assert!(
        r.pir_fallback_rows > 0,
        "non-compilable residual must count interpreted pairs"
    );
}

/// Aggregate and join-residual queries stay byte-identical across the
/// toggle at 1/2/8 threads under a seeded fault plan, and the charged
/// fault penalty is toggle-invariant at every thread count — compiled
/// accumulators and pair-batches must not shift the per-stage fault
/// rolls.
#[test]
fn agg_and_residual_fault_sweep_is_toggle_invariant() {
    let agg_sql = "SELECT ss_store_sk, COUNT(*) AS c, SUM(ss_list_price) AS s, \
                   MIN(ss_net_profit) AS lo, MAX(ss_wholesale_cost) AS hi, \
                   AVG(ss_quantity) AS a FROM store_sales \
                   WHERE ss_quantity < 80 GROUP BY ss_store_sk ORDER BY ss_store_sk";
    let join_sql = "SELECT ss_ticket_number, ss_item_sk, i_current_price \
                    FROM store_sales JOIN item ON ss_item_sk = i_item_sk \
                    AND (ss_list_price > i_current_price OR i_category = 'Home')";
    let plan = FaultPlan::none().with(|p| {
        p.seed = 0x000A_660F_F00D;
        p.daemon_kill_prob = 0.6;
        p.dfs_read_error_prob = 0.05;
        p.dfs_slow_prob = 0.15;
        p.dfs_slow_ms = 3.0;
    });
    let baseline_server = load_server(false, 1);
    for sql in [agg_sql, join_sql] {
        let baseline = baseline_server
            .session()
            .execute(sql)
            .unwrap()
            .display_rows();
        for threads in [1usize, 2, 8] {
            let run = |pir: bool| -> (Vec<String>, f64, u64) {
                let server = load_server(pir, threads);
                server.set_conf(|c| c.fault = plan.clone());
                let r = server.session().execute(sql).unwrap();
                (r.display_rows(), r.sim_ms, r.fragment_retries)
            };
            let (rows_off, ms_off, retries_off) = run(false);
            let (rows_on, ms_on, retries_on) = run(true);
            assert_eq!(
                rows_off, baseline,
                "faulted pir=off diverged at {threads} threads"
            );
            assert_eq!(
                rows_on, baseline,
                "faulted pir=on diverged at {threads} threads"
            );
            assert_eq!(
                (ms_on, retries_on),
                (ms_off, retries_off),
                "fault penalty shifted under PIR at {threads} threads"
            );
        }
    }
}
