//! Selection-vector differential suite: `hive.exec.selvec.enabled`
//! may only change how batches flow (selections + shared `Arc` columns
//! versus eager compaction), never results. Every curated TPC-DS query
//! must return byte-identical rows with the selection path on and off —
//! fault-free, under a seeded fault plan with recovery, and across the
//! 1/2/8 thread sweep.

use hive_warehouse::benchdata::tpcds::{self, TpcdsScale};
use hive_warehouse::{FaultPlan, HiveConf, HiveServer};

/// Env knobs override the conf fields; this binary manages both itself.
fn neutralize_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::remove_var("HIVE_SELVEC_ENABLED");
        std::env::remove_var("HIVE_DICT_ENABLED");
        std::env::remove_var("HIVE_PARALLEL_THREADS");
    });
}

/// Big enough that scans span several row groups and partitions, so
/// selections ride through the cache and every operator for real.
fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 1500,
        return_rate: 0.1,
    }
}

fn load_server(selvec: bool, threads: usize) -> HiveServer {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.selvec_enabled = selvec;
    conf.parallel_threads = threads;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

/// Every curated TPC-DS query: selection vectors on == off.
#[test]
fn selvec_toggle_never_changes_results() {
    let queries = tpcds::queries();
    let off = load_server(false, 1);
    let on = load_server(true, 1);
    for q in &queries {
        let expected = off.session().execute(&q.sql).unwrap().display_rows();
        let got = on.session().execute(&q.sql).unwrap().display_rows();
        assert_eq!(got, expected, "{} diverged with selection vectors", q.id);
    }
}

/// The toggle stays invisible across worker counts: for each thread
/// count the selvec-on rows equal the selvec-off rows, and all equal
/// the 1-thread baseline.
#[test]
fn selvec_toggle_is_invisible_across_thread_sweep() {
    let query = &tpcds::queries()[0]; // q3: scan + join + group + order
    let baseline = load_server(false, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();
    assert!(!baseline.is_empty());
    for threads in [1, 2, 8] {
        for selvec in [false, true] {
            let rows = load_server(selvec, threads)
                .session()
                .execute(&query.sql)
                .unwrap()
                .display_rows();
            assert_eq!(
                rows, baseline,
                "selvec={selvec} at {threads} threads diverged"
            );
        }
    }
}

/// A seeded fault plan (daemon deaths, transient DFS errors, recovery
/// enabled) yields the fault-free rows under both settings, and the
/// simulated fault penalty replays exactly within each setting.
#[test]
fn faulted_runs_match_under_both_settings() {
    let query = &tpcds::queries()[0];
    let baseline = load_server(false, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xBADD_CAFE;
        p.daemon_kill_prob = 0.8;
        p.dfs_read_error_prob = 0.05;
        p.dfs_slow_prob = 0.1;
        p.dfs_slow_ms = 4.0;
    });
    let run = |selvec: bool| -> (Vec<String>, f64, u64) {
        let server = load_server(selvec, 2);
        server.set_conf(|c| c.fault = plan.clone());
        let r = server.session().execute(&query.sql).unwrap();
        (r.display_rows(), r.sim_ms, r.fragment_retries)
    };
    for selvec in [false, true] {
        let (rows, sim_ms, retries) = run(selvec);
        assert_eq!(rows, baseline, "faulted run diverged with selvec={selvec}");
        let (rows2, sim_ms2, retries2) = run(selvec);
        assert_eq!(rows2, baseline);
        assert_eq!(
            (sim_ms2, retries2),
            (sim_ms, retries),
            "fault penalty must replay exactly with selvec={selvec}"
        );
    }
}
