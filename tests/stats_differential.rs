//! Statistics differential suite: `hive.optimizer.histograms.enabled`
//! may only change *estimates* — join order, build-side choice, Bloom
//! sizing, conjunct order — never results. Every curated TPC-DS query
//! must return byte-identical rows with histograms on and off —
//! fault-free, under a seeded fault plan with recovery, and across the
//! 1/2/8 thread sweep. The adaptive rung is then exercised end to end:
//! a join whose LIKE-defaulted filter estimate undershoots reality by
//! more than 10x must trip the cardinality guard exactly once, re-plan
//! with the observed count substituted, and return the same rows; the
//! persisted feedback must keep a second execution of the same query
//! from ever tripping again.

use hive_warehouse::benchdata::tpcds::{self, TpcdsScale};
use hive_warehouse::{FaultPlan, HiveConf, HiveServer};

/// Env knobs override the conf fields; this binary manages both itself.
fn neutralize_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::remove_var("HIVE_HISTOGRAMS_ENABLED");
        std::env::remove_var("HIVE_PIR_ENABLED");
        std::env::remove_var("HIVE_SELVEC_ENABLED");
        std::env::remove_var("HIVE_DICT_ENABLED");
        std::env::remove_var("HIVE_RAWTABLE_ENABLED");
        std::env::remove_var("HIVE_PARALLEL_THREADS");
    });
}

/// Big enough that multi-join queries exercise reordering, runtime
/// filters, and partition pruning with real row counts behind them.
fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 1500,
        return_rate: 0.1,
    }
}

fn load_server(histograms: bool, threads: usize) -> HiveServer {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.histograms_enabled = histograms;
    conf.parallel_threads = threads;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

/// Every curated TPC-DS query: histogram-driven planning == constant
/// selectivities, byte for byte.
#[test]
fn histogram_toggle_never_changes_results() {
    let queries = tpcds::queries();
    let off = load_server(false, 1);
    let on = load_server(true, 1);
    for q in &queries {
        let expected = off.session().execute(&q.sql).unwrap().display_rows();
        let got = on.session().execute(&q.sql).unwrap().display_rows();
        assert_eq!(got, expected, "{} diverged with histograms enabled", q.id);
    }
}

/// The toggle stays invisible across worker counts: the whole curated
/// suite agrees between histograms on and off at 1, 2, and 8 threads,
/// and every run equals the 1-thread constant-selectivity baseline.
#[test]
fn histogram_toggle_is_invisible_across_thread_sweep() {
    let queries = tpcds::queries();
    let baseline_server = load_server(false, 1);
    let baseline: Vec<Vec<String>> = queries
        .iter()
        .map(|q| {
            baseline_server
                .session()
                .execute(&q.sql)
                .unwrap()
                .display_rows()
        })
        .collect();
    assert!(baseline.iter().any(|rows| !rows.is_empty()));
    for threads in [2, 8] {
        for hist in [false, true] {
            let server = load_server(hist, threads);
            for (q, expected) in queries.iter().zip(&baseline) {
                let rows = server.session().execute(&q.sql).unwrap().display_rows();
                assert_eq!(
                    &rows, expected,
                    "{} diverged with histograms={hist} at {threads} threads",
                    q.id
                );
            }
        }
    }
    let on = load_server(true, 1);
    for (q, expected) in queries.iter().zip(&baseline) {
        let rows = on.session().execute(&q.sql).unwrap().display_rows();
        assert_eq!(
            &rows, expected,
            "{} diverged with histograms at 1 thread",
            q.id
        );
    }
}

/// A seeded fault plan (daemon deaths, transient DFS errors, recovery
/// enabled) yields the fault-free rows under both settings, and the
/// simulated fault penalty replays exactly within each setting.
#[test]
fn faulted_runs_match_under_both_settings() {
    let query = &tpcds::queries()[0];
    let baseline = load_server(false, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xBADD_CAFE;
        p.daemon_kill_prob = 0.8;
        p.dfs_read_error_prob = 0.05;
        p.dfs_slow_prob = 0.1;
        p.dfs_slow_ms = 4.0;
    });
    let run = |hist: bool| -> (Vec<String>, f64, u64) {
        let server = load_server(hist, 2);
        server.set_conf(|c| c.fault = plan.clone());
        let r = server.session().execute(&query.sql).unwrap();
        (r.display_rows(), r.sim_ms, r.fragment_retries)
    };
    for hist in [false, true] {
        let (rows, sim_ms, retries) = run(hist);
        assert_eq!(
            rows, baseline,
            "faulted run diverged with histograms={hist}"
        );
        let (rows2, sim_ms2, retries2) = run(hist);
        assert_eq!(rows2, baseline);
        assert_eq!(
            (sim_ms2, retries2),
            (sim_ms, retries),
            "fault penalty must replay exactly with histograms={hist}"
        );
    }
}

/// A fact table whose every row survives two LIKE filters (estimated
/// at the 0.25 default each, so the planner expects 1/16th of reality)
/// joined to a one-row dimension: observed join cardinality lands 16x
/// over the estimate, past the 10x guard.
fn load_skewed(histograms: bool) -> HiveServer {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.histograms_enabled = histograms;
    // The second execution must actually plan and run, not replay a
    // cached result.
    conf.results_cache = false;
    let server = HiveServer::new(conf);
    let s = server.session();
    s.execute("CREATE TABLE dim (k INT, tag STRING)").unwrap();
    s.execute("INSERT INTO dim VALUES (1, 'hot')").unwrap();
    s.execute("CREATE TABLE fact (k INT, note STRING)").unwrap();
    for chunk in 0..12 {
        let values: Vec<String> = (0..1000)
            .map(|i| format!("(1, 'xy{}')", chunk * 1000 + i))
            .collect();
        s.execute(&format!("INSERT INTO fact VALUES {}", values.join(", ")))
            .unwrap();
    }
    server
}

const SKEWED_SQL: &str = "SELECT d.tag, COUNT(*) AS c FROM fact f JOIN dim d ON f.k = d.k \
     WHERE f.note LIKE 'x%' AND f.note LIKE '%y%' GROUP BY d.tag";

/// The adaptive rung end to end: the first execution trips the
/// cardinality guard (observed 12000 vs ~750 estimated), re-plans once
/// with the observed count as feedback, and still returns the rows the
/// constant-selectivity path produces. The trip persists the observed
/// cardinality under the analyzed-plan fingerprint, so a second
/// execution of the same query plans with feedback preloaded and never
/// trips — one re-plan per misestimate, not one per run.
#[test]
fn misestimate_trips_guard_once_then_feedback_holds() {
    let baseline = load_skewed(false)
        .session()
        .execute(SKEWED_SQL)
        .unwrap()
        .display_rows();
    assert_eq!(baseline, vec!["hot\t12000"]);

    let server = load_skewed(true);
    let first = server.session().execute(SKEWED_SQL).unwrap();
    assert!(
        first.reexecuted,
        "16x misestimate must trip the cardinality guard and re-plan"
    );
    assert_eq!(first.display_rows(), baseline, "re-planned rows diverged");

    let second = server.session().execute(SKEWED_SQL).unwrap();
    assert!(
        !second.reexecuted,
        "persisted feedback must keep the second run from tripping"
    );
    assert_eq!(second.display_rows(), baseline);
}

/// With histograms off the guard never arms: the same skewed query runs
/// clean on the constant-selectivity path — the differential oracle the
/// toggle preserves.
#[test]
fn guard_stays_dormant_with_histograms_off() {
    let server = load_skewed(false);
    let first = server.session().execute(SKEWED_SQL).unwrap();
    assert!(!first.reexecuted, "guard must not arm with histograms off");
    let second = server.session().execute(SKEWED_SQL).unwrap();
    assert!(!second.reexecuted);
}
