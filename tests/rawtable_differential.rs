//! Flat-hash-table differential suite: `hive.exec.rawtable.enabled`
//! may only change the hash-table representation inside join,
//! aggregate, window, and set-operation execution — never results.
//! Every curated TPC-DS query must return byte-identical rows with the
//! flat table on and off — fault-free, under a seeded fault plan with
//! recovery, and across the 1/2/8 thread sweep. Property tests then
//! drive the table itself against a `HashMap` model through forced
//! fingerprint collisions and growth boundaries.

use hive_exec::RawTable;
use hive_warehouse::benchdata::tpcds::{self, TpcdsScale};
use hive_warehouse::{FaultPlan, HiveConf, HiveServer};
use proptest::prelude::*;
use std::collections::HashMap;

/// Env knobs override the conf fields; this binary manages both itself.
fn neutralize_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::remove_var("HIVE_RAWTABLE_ENABLED");
        std::env::remove_var("HIVE_SELVEC_ENABLED");
        std::env::remove_var("HIVE_DICT_ENABLED");
        std::env::remove_var("HIVE_PARALLEL_THREADS");
    });
}

/// Big enough that aggregates and joins grow their tables through
/// several doublings and the parallel build actually partitions.
fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 1500,
        return_rate: 0.1,
    }
}

fn load_server(rawtable: bool, threads: usize) -> HiveServer {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.rawtable_enabled = rawtable;
    conf.parallel_threads = threads;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

/// Every curated TPC-DS query: flat table on == off, byte for byte.
#[test]
fn rawtable_toggle_never_changes_results() {
    let queries = tpcds::queries();
    let off = load_server(false, 1);
    let on = load_server(true, 1);
    for q in &queries {
        let expected = off.session().execute(&q.sql).unwrap().display_rows();
        let got = on.session().execute(&q.sql).unwrap().display_rows();
        assert_eq!(got, expected, "{} diverged with the flat hash table", q.id);
    }
}

/// The toggle stays invisible across worker counts: for each thread
/// count the rawtable-on rows equal the rawtable-off rows, and all
/// equal the 1-thread baseline.
#[test]
fn rawtable_toggle_is_invisible_across_thread_sweep() {
    let query = &tpcds::queries()[0]; // q3: scan + join + group + order
    let baseline = load_server(false, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();
    assert!(!baseline.is_empty());
    for threads in [1, 2, 8] {
        for rawtable in [false, true] {
            let rows = load_server(rawtable, threads)
                .session()
                .execute(&query.sql)
                .unwrap()
                .display_rows();
            assert_eq!(
                rows, baseline,
                "rawtable={rawtable} at {threads} threads diverged"
            );
        }
    }
}

/// A seeded fault plan (daemon deaths, transient DFS errors, recovery
/// enabled) yields the fault-free rows under both settings, and the
/// simulated fault penalty replays exactly within each setting.
#[test]
fn faulted_runs_match_under_both_settings() {
    let query = &tpcds::queries()[0];
    let baseline = load_server(false, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xF1A7_AB1E;
        p.daemon_kill_prob = 0.8;
        p.dfs_read_error_prob = 0.05;
        p.dfs_slow_prob = 0.1;
        p.dfs_slow_ms = 4.0;
    });
    let run = |rawtable: bool| -> (Vec<String>, f64, u64) {
        let server = load_server(rawtable, 2);
        server.set_conf(|c| c.fault = plan.clone());
        let r = server.session().execute(&query.sql).unwrap();
        (r.display_rows(), r.sim_ms, r.fragment_retries)
    };
    for rawtable in [false, true] {
        let (rows, sim_ms, retries) = run(rawtable);
        assert_eq!(
            rows, baseline,
            "faulted run diverged with rawtable={rawtable}"
        );
        let (rows2, sim_ms2, retries2) = run(rawtable);
        assert_eq!(rows2, baseline);
        assert_eq!(
            (sim_ms2, retries2),
            (sim_ms, retries),
            "fault penalty must replay exactly with rawtable={rawtable}"
        );
    }
}

/// FNV-1a as the table uses it (the real hash for the model runs).
fn fnv(key: &[u8]) -> u64 {
    hive_warehouse::common::hash::fnv1a(key)
}

/// Drive a key sequence through [`RawTable`] and a `HashMap` model:
/// entry ids must be dense first-seen indexes, lookups must agree, and
/// stored key bytes must round-trip — under whatever `hash` function
/// the caller picks (a constant one forces every key through the same
/// bucket chain and a single fingerprint).
fn check_against_model(keys: &[Vec<u8>], hash: impl Fn(&[u8]) -> u64) {
    let mut table = RawTable::new();
    let mut model: HashMap<Vec<u8>, u32> = HashMap::new();
    for key in keys {
        let h = hash(key);
        let expected = model.len() as u32;
        let (e, inserted) = table.insert(h, key);
        match model.get(key) {
            Some(&id) => {
                assert!(!inserted, "reinserted known key");
                assert_eq!(e, id, "entry id changed for known key");
            }
            None => {
                assert!(inserted, "missed new key");
                assert_eq!(e, expected, "entry ids must be dense first-seen indexes");
                model.insert(key.clone(), expected);
            }
        }
        assert_eq!(
            table.key(e as usize),
            key.as_slice(),
            "arena key bytes diverged"
        );
    }
    assert_eq!(table.len(), model.len());
    for (key, &id) in &model {
        assert_eq!(table.find(hash(key), key), Some(id));
    }
    // Never-inserted probes must miss.
    let absent = b"\xFFnever-inserted\xFF".to_vec();
    if !model.contains_key(&absent) {
        assert_eq!(table.find(hash(&absent), &absent), None);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random byte keys from a small alphabet (plenty of duplicates)
    /// behave exactly like the `HashMap` model.
    #[test]
    fn rawtable_matches_hashmap_model(
        keys in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..6), 0..400),
    ) {
        check_against_model(&keys, fnv);
    }

    /// A constant hash forces every key onto one probe chain with one
    /// fingerprint: disambiguation must fall through to key bytes.
    #[test]
    fn forced_fingerprint_collisions_disambiguate_by_key_bytes(
        keys in proptest::collection::vec(proptest::collection::vec(0u8..4, 0..5), 0..200),
        h in any::<u64>(),
    ) {
        check_against_model(&keys, move |_| h);
    }

    /// Insert counts straddling the growth threshold: entry ids and
    /// lookups survive every rehash boundary.
    #[test]
    fn growth_boundaries_preserve_entries(n in 0usize..700) {
        let keys: Vec<Vec<u8>> = (0..n as u64)
            .map(|i| i.to_le_bytes().to_vec())
            .collect();
        check_against_model(&keys, fnv);
        // And again with every key re-probed after full growth.
        let twice: Vec<Vec<u8>> = keys.iter().chain(keys.iter()).cloned().collect();
        check_against_model(&twice, fnv);
    }
}
