//! Spill differential suite: the per-query memory budget
//! (`hive.exec.memory.per.query.bytes`) may only change *where*
//! blocking operators keep their working state — never results. Every
//! curated TPC-DS query must return byte-identical rows with an
//! unlimited budget and with a budget tiny enough to force grace joins,
//! spilled group-bys, and external sorts — fault-free, under a seeded
//! spill-targeted fault plan with recovery, and across the 1/2/8 thread
//! sweep. Property tests then drive the recursive partition planner
//! against the adversarial case it must survive: a build side that is
//! one giant key and therefore can never be split.

use hive_exec::spill::{plan_partition, MAX_DEPTH, MAX_FANOUT};
use hive_warehouse::benchdata::tpcds::{self, TpcdsScale};
use hive_warehouse::{FaultPlan, HiveConf, HiveServer};
use proptest::prelude::*;

/// A budget small enough that every blocking operator at this scale
/// overflows it, yet large enough to keep recursion shallow.
const TINY_BUDGET: usize = 32 * 1024;

/// Env knobs override the conf fields; this binary manages both itself.
fn neutralize_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        std::env::remove_var("HIVE_SPILL_ENABLED");
        std::env::remove_var("HIVE_MEMORY_BUDGET");
        std::env::remove_var("HIVE_RAWTABLE_ENABLED");
        std::env::remove_var("HIVE_SELVEC_ENABLED");
        std::env::remove_var("HIVE_DICT_ENABLED");
        std::env::remove_var("HIVE_PARALLEL_THREADS");
    });
}

/// Big enough that joins build tens of thousands of rows and group-bys
/// hold thousands of groups — far past `TINY_BUDGET`.
fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 1500,
        return_rate: 0.1,
    }
}

fn load_server(budget: usize, threads: usize) -> HiveServer {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.memory_per_query_bytes = budget;
    conf.parallel_threads = threads;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

/// Every curated TPC-DS query: unlimited == tiny budget, byte for
/// byte — and the tiny budget must actually spill somewhere (no
/// silently-green run where nothing ever left memory).
#[test]
fn tiny_budget_never_changes_results() {
    let queries = tpcds::queries();
    let unlimited = load_server(0, 1);
    let tiny = load_server(TINY_BUDGET, 1);
    let mut total_spilled = 0u64;
    for q in &queries {
        let expected = unlimited.session().execute(&q.sql).unwrap().display_rows();
        let r = tiny.session().execute(&q.sql).unwrap();
        assert_eq!(
            r.display_rows(),
            expected,
            "{} diverged under the tiny budget",
            q.id
        );
        total_spilled += r.bytes_spilled;
    }
    assert!(
        total_spilled > 0,
        "the tiny budget never forced a spill — the differential is vacuous"
    );
    // Nothing may leak: every spill file is deleted when its operator
    // finishes.
    let leftovers = tiny
        .fs()
        .list_files_recursive(&hive_warehouse::DfsPath::new("/tmp/hive/spill"));
    assert!(leftovers.is_empty(), "orphan spill files: {leftovers:?}");
}

/// A curated query whose joins and group-bys all overflow
/// `TINY_BUDGET` at this scale (q7: multi-way join + aggregation).
fn spilling_query() -> tpcds::TpcdsQuery {
    tpcds::queries()
        .into_iter()
        .find(|q| q.id == "q7")
        .expect("q7 in the curated set")
}

/// The budget stays invisible across worker counts: for each thread
/// count the tiny-budget rows equal the unlimited rows, and all equal
/// the 1-thread baseline.
#[test]
fn tiny_budget_is_invisible_across_thread_sweep() {
    let query = spilling_query();
    let baseline = load_server(0, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();
    assert!(!baseline.is_empty());
    for threads in [1, 2, 8] {
        for budget in [0, TINY_BUDGET] {
            let rows = load_server(budget, threads)
                .session()
                .execute(&query.sql)
                .unwrap()
                .display_rows();
            assert_eq!(
                rows, baseline,
                "budget={budget} at {threads} threads diverged"
            );
        }
    }
}

/// A seeded fault plan aimed squarely at the spill files (targeted
/// read/write failures that heal after two attempts, plus
/// probabilistic write faults, daemon deaths, and transient DFS reads)
/// yields the fault-free rows, and the simulated penalty replays
/// exactly — at every thread count.
#[test]
fn spill_faulted_runs_replay_deterministically() {
    let query = spilling_query();
    let baseline = load_server(0, 1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0x5B11_1FA1;
        p.fail_path_substrings = vec!["spill".into()];
        p.path_fail_count = 2;
        p.dfs_write_error_prob = 0.2;
        p.daemon_kill_prob = 0.5;
        p.dfs_read_error_prob = 0.05;
    });
    for threads in [1, 2, 8] {
        let run = || -> (Vec<String>, f64, u64, u64) {
            let server = load_server(TINY_BUDGET, threads);
            server.set_conf(|c| c.fault = plan.clone());
            let r = server.session().execute(&query.sql).unwrap();
            (
                r.display_rows(),
                r.sim_ms,
                r.fragment_retries,
                r.bytes_spilled,
            )
        };
        let (rows, sim_ms, retries, spilled) = run();
        assert_eq!(
            rows, baseline,
            "faulted spill run diverged at {threads} threads"
        );
        assert!(spilled > 0, "faults must not suppress the spill");
        let (rows2, sim_ms2, retries2, spilled2) = run();
        assert_eq!(rows2, baseline);
        assert_eq!(
            (sim_ms2, retries2, spilled2),
            (sim_ms, retries, spilled),
            "spill fault penalty must replay exactly at {threads} threads"
        );
    }
}

/// The adversarial skew case, end to end: a build side that is a single
/// repeated key can never be split by hashing. The planner's
/// no-progress guard must stop recursing and process it in memory
/// (overshooting the budget) instead of looping forever.
#[test]
fn single_key_build_side_terminates_and_matches() {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.memory_per_query_bytes = 4096;
    let server = HiveServer::new(conf);
    let session = server.session();
    session
        .execute("CREATE TABLE skew_build (k INT, v INT)")
        .unwrap();
    session
        .execute("CREATE TABLE skew_probe (k INT, p INT)")
        .unwrap();
    // 3000 identical build keys: every partition pass routes all rows
    // to one child.
    for chunk in 0..10 {
        let values: Vec<String> = (0..300)
            .map(|i| format!("(7, {})", chunk * 300 + i))
            .collect();
        session
            .execute(&format!(
                "INSERT INTO skew_build VALUES {}",
                values.join(", ")
            ))
            .unwrap();
    }
    session
        .execute("INSERT INTO skew_probe VALUES (7, 1), (8, 2), (7, 3)")
        .unwrap();
    let r = session
        .execute(
            "SELECT COUNT(*), SUM(v), SUM(p) FROM skew_probe \
             JOIN skew_build ON skew_probe.k = skew_build.k",
        )
        .unwrap();
    // 2 probe rows × 3000 build rows; sum(v) over two full copies of
    // 0..3000, sum(p) = (1+3) × 3000.
    assert_eq!(r.display_rows(), vec!["6000\t8997000\t12000".to_string()]);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Simulated recursion over the partition planner: even when no
    /// pass makes progress (single-key skew: every child inherits all
    /// parent rows), the plan must reach `process_in_memory` within
    /// `MAX_DEPTH` steps, and every emitted fanout stays in bounds.
    #[test]
    fn recursive_partitioning_terminates_on_single_key_skew(
        rows in 1usize..5_000_000,
        bytes_per_row in 1u64..4096,
        budget in 1u64..1_048_576,
    ) {
        let mut parent: Option<usize> = None;
        let mut depth = 0u32;
        loop {
            let plan = plan_partition(rows as u64 * bytes_per_row, budget, depth, rows, parent);
            if plan.process_in_memory {
                break;
            }
            prop_assert!(
                (2..=MAX_FANOUT).contains(&plan.fanout),
                "fanout {} out of bounds at depth {depth}", plan.fanout
            );
            prop_assert!(depth < MAX_DEPTH, "recursed past MAX_DEPTH");
            // Worst case: the single giant key funnels every row into
            // one child partition.
            parent = Some(rows);
            depth += 1;
        }
        prop_assert!(depth <= MAX_DEPTH);
    }

    /// With even two distinct hash values the no-progress guard must
    /// not fire early: a child strictly smaller than its parent keeps
    /// partitioning until it fits the budget or hits the depth cap.
    #[test]
    fn shrinking_partitions_keep_splitting_until_they_fit(
        rows in 2usize..1_000_000,
        budget in 4096u64..1_048_576,
    ) {
        let bytes_per_row = 64u64;
        let mut rows = rows;
        let mut parent: Option<usize> = None;
        let mut depth = 0u32;
        loop {
            let est = rows as u64 * bytes_per_row;
            let plan = plan_partition(est, budget, depth, rows, parent);
            if plan.process_in_memory {
                // Legitimate stops only: it fits, we hit the depth cap,
                // or the partition is down to a single row.
                prop_assert!(
                    est <= budget || depth >= MAX_DEPTH || rows <= 1,
                    "gave up early: est={est} budget={budget} depth={depth} rows={rows}"
                );
                break;
            }
            parent = Some(rows);
            // Each pass halves the partition (two distinct keys).
            rows = rows.div_ceil(2);
            depth += 1;
        }
    }
}
