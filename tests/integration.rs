//! Cross-crate integration tests through the `hive-warehouse` public
//! API: the full lifecycle a downstream user exercises.

use hive_warehouse::benchdata::{ssb, tpcds};
use hive_warehouse::{HiveConf, HiveServer, Value};

#[test]
fn end_to_end_warehouse_lifecycle() {
    let server = HiveServer::new(HiveConf::v3_1());
    let session = server.session();

    // DDL + DML.
    session
        .execute("CREATE TABLE orders (o_id INT, region STRING, total DECIMAL(10,2))")
        .unwrap();
    session
        .execute("INSERT INTO orders VALUES (1, 'EU', 10.00), (2, 'NA', 20.00), (3, 'EU', 30.00)")
        .unwrap();
    session
        .execute("UPDATE orders SET total = total + 1.00 WHERE region = 'EU'")
        .unwrap();
    session
        .execute("DELETE FROM orders WHERE o_id = 2")
        .unwrap();

    let r = session
        .execute("SELECT region, SUM(total) FROM orders GROUP BY region ORDER BY region")
        .unwrap();
    assert_eq!(r.display_rows(), vec!["EU\t42.00"]);

    // Results cache round trip.
    let again = session
        .execute("SELECT region, SUM(total) FROM orders GROUP BY region ORDER BY region")
        .unwrap();
    assert!(again.from_cache);
}

#[test]
fn tpcds_workload_runs_on_both_engine_versions() {
    let server = HiveServer::new(HiveConf::v3_1());
    tpcds::load(&server, tpcds::TpcdsScale::tiny(), 99).unwrap();
    let session = server.session();
    let queries = tpcds::queries();

    // All queries succeed on 3.1.
    let mut v31: Vec<(String, Vec<String>)> = Vec::new();
    for q in &queries {
        let r = session
            .execute(&q.sql)
            .unwrap_or_else(|e| panic!("{} failed on 3.1: {e}", q.id));
        v31.push((q.id.to_string(), r.display_rows()));
    }

    // On 1.2 exactly the gated queries fail; the rest agree with 3.1.
    // (Row-interpreter execution must be bit-identical to vectorized for
    // deterministic queries without floats in unstable aggregation
    // orders; compare sorted rows.)
    server.set_conf(|c| *c = HiveConf::v1_2());
    for (q, (id, expected)) in queries.iter().zip(&v31) {
        match session.execute(&q.sql) {
            Ok(r) => {
                assert!(q.v1_2_ok, "{id} should have been rejected on 1.2");
                let mut a = r.display_rows();
                let mut b = expected.clone();
                a.sort();
                b.sort();
                // Floating-point group sums may differ in the last ulps
                // between accumulation orders; normalize.
                let norm = |rows: &mut Vec<String>| {
                    for r in rows.iter_mut() {
                        *r = r
                            .split('\t')
                            .map(|c| match c.parse::<f64>() {
                                Ok(v) => format!("{v:.2}"),
                                Err(_) => c.to_string(),
                            })
                            .collect::<Vec<_>>()
                            .join("\t");
                    }
                };
                norm(&mut a);
                norm(&mut b);
                assert_eq!(a, b, "{id} diverged between engine versions");
            }
            Err(e) => {
                assert!(!q.v1_2_ok, "{id} unexpectedly failed on 1.2: {e}");
            }
        }
    }
}

#[test]
fn ssb_federation_agrees_between_stores() {
    let server = HiveServer::new(HiveConf::v3_1());
    let scale = ssb::SsbScale {
        lineorders: 800,
        days: 90,
    };
    ssb::load_native(&server, scale, 5).unwrap();
    ssb::load_druid(&server, scale, 5).unwrap();
    let session = server.session();
    for ((id, nq), (_, dq)) in ssb::queries("ssb_flat")
        .iter()
        .zip(&ssb::queries("ssb_flat_druid"))
    {
        let norm = |rows: Vec<String>| {
            let mut out: Vec<String> = rows
                .into_iter()
                .map(|r| {
                    r.split('\t')
                        .map(|c| match c.parse::<f64>() {
                            Ok(v) => format!("{v:.2}"),
                            Err(_) => c.to_string(),
                        })
                        .collect::<Vec<_>>()
                        .join("\t")
                })
                .collect();
            out.sort();
            out
        };
        let a = norm(session.execute(nq).unwrap().display_rows());
        let b = norm(session.execute(dq).unwrap().display_rows());
        assert_eq!(a, b, "{id} diverged between native and Druid");
    }
}

#[test]
fn crash_free_error_paths() {
    let server = HiveServer::new(HiveConf::v3_1());
    let session = server.session();
    // Every failure mode surfaces as a typed error, never a panic.
    assert!(session.execute("SELECT * FROM missing_table").is_err());
    assert!(session.execute("SELEC nonsense").is_err());
    assert!(session.execute("SELECT unknown_fn(1)").is_err());
    session.execute("CREATE TABLE t (a INT NOT NULL)").unwrap();
    assert!(session.execute("INSERT INTO t VALUES (NULL)").is_err());
    assert!(
        session.execute("INSERT INTO t VALUES (1, 2)").is_err(),
        "arity mismatch"
    );
    // Writes to external tables without handlers fail cleanly.
    session
        .execute("CREATE EXTERNAL TABLE plain_ext (a INT)")
        .unwrap();
    assert!(session.execute("DELETE FROM plain_ext").is_err());
}

#[test]
fn write_write_conflicts_surface_to_clients() {
    let server = HiveServer::new(HiveConf::v3_1());
    let a = server.session();
    a.execute("CREATE TABLE c (k INT, v INT)").unwrap();
    a.execute("INSERT INTO c VALUES (1, 10)").unwrap();
    // Two sessions race an UPDATE on the same rows: with synchronous
    // execution the statements serialize, so both succeed — the
    // conflict machinery is exercised at the TxnManager level (see
    // hive-metastore's first_commit_wins test); here we verify values
    // remain consistent after interleaved updates.
    let b = server.session();
    a.execute("UPDATE c SET v = v + 1 WHERE k = 1").unwrap();
    b.execute("UPDATE c SET v = v + 1 WHERE k = 1").unwrap();
    let r = a.execute("SELECT v FROM c WHERE k = 1").unwrap();
    assert_eq!(r.rows()[0].get(0), &Value::Int(12));
}
