//! Serving determinism: `run_streams` is a pure function of its inputs.
//!
//! The serving layer executes concurrent streams on a simulated
//! timeline (see `hive_core::serving`), so three properties must hold
//! no matter how streams interleave:
//!
//! 1. every completed query's rows are byte-identical to a serial
//!    single-session run on a fresh, identically-loaded server;
//! 2. a re-run with the same inputs replays the entire schedule —
//!    spans, waits, verdicts, per-query sim-times — bit for bit, with
//!    or without an active fault plan;
//! 3. the morsel-executor thread count changes nothing at all.
//!
//! `scripts/verify.sh --wm-sweep` drives the env-gated sweep at 1/4/16
//! streams × 1/2/8 threads under a fixed `HIVE_FAULT_SEED`.

use std::collections::HashMap;

use hive_warehouse::benchdata::tpcds::{self, TpcdsScale};
use hive_warehouse::{
    FaultPlan, HiveConf, HiveServer, QueryStream, QueryVerdict, ServingOptions, ServingReport,
};

/// The env knob overrides the conf field; these tests manage thread
/// counts themselves, so drop the variable once before any server is
/// built. (The env-gated sweep test runs in its own filtered
/// invocation and deliberately leaves the variable alone.)
fn neutralize_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::remove_var("HIVE_PARALLEL_THREADS"));
}

/// Small enough to keep many fresh loads cheap, big enough that scans
/// span several row groups.
fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 6,
        items: 120,
        customers: 150,
        stores: 4,
        sales_per_day: 1000,
        return_rate: 0.1,
    }
}

fn load_server(threads: usize, fault: Option<&FaultPlan>) -> HiveServer {
    let mut conf = HiveConf::v3_1();
    conf.parallel_threads = threads;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    if let Some(plan) = fault {
        // Applied after load so faults hit only the serving run.
        server.set_conf(|c| c.fault = plan.clone());
    }
    server
}

/// Deterministic stream scripts over the curated TPC-DS set: stream
/// `i`'s `j`-th statement is query `(i*7 + j*3) mod |Q|`.
fn make_streams(n: usize, per_stream: usize) -> Vec<QueryStream> {
    let queries = tpcds::queries();
    (0..n)
        .map(|i| QueryStream {
            name: format!("stream-{i}"),
            user: format!("user-{i}"),
            application: None,
            groups: vec![],
            statements: (0..per_stream)
                .map(|j| queries[(i * 7 + j * 3) % queries.len()].sql.clone())
                .collect(),
        })
        .collect()
}

/// Serial oracle: every curated query's rows from a fresh
/// single-session server, keyed by SQL text.
fn serial_oracle(threads: usize, fault: Option<&FaultPlan>) -> HashMap<String, Vec<String>> {
    let server = load_server(threads, fault);
    tpcds::queries()
        .into_iter()
        .map(|q| {
            let rows = server.session().execute(&q.sql).unwrap().display_rows();
            (q.sql, rows)
        })
        .collect()
}

/// Everything observable about one outcome (f64s bit-cast): stream,
/// index, verdict, pool, wait, solo sim-time, finish instant.
type OutcomeFp = (usize, usize, String, Option<String>, u64, u64, u64);

/// Everything observable about a run — equality means *exact* replay.
fn fingerprint(r: &ServingReport) -> Vec<OutcomeFp> {
    let mut fp: Vec<_> = r
        .outcomes
        .iter()
        .map(|o| {
            (
                o.stream,
                o.index,
                format!("{:?}", o.verdict),
                o.pool.clone(),
                o.wait_ms.to_bits(),
                o.solo_sim_ms.to_bits(),
                o.finished_ms.to_bits(),
            )
        })
        .collect();
    fp.push((
        usize::MAX,
        0,
        String::new(),
        None,
        0,
        r.span_ms.to_bits(),
        0,
    ));
    fp
}

fn assert_rows_match_oracle(
    report: &ServingReport,
    streams: &[QueryStream],
    oracle: &HashMap<String, Vec<String>>,
) {
    for o in &report.outcomes {
        assert_eq!(
            o.verdict,
            QueryVerdict::Completed,
            "stream {} stmt {} did not complete: {:?}",
            o.stream,
            o.index,
            o.verdict
        );
        let sql = &streams[o.stream].statements[o.index];
        let rows = o.result.as_ref().expect("completed").display_rows();
        assert_eq!(
            &rows, &oracle[sql],
            "stream {} stmt {} diverged from serial run",
            o.stream, o.index
        );
    }
}

/// Concurrency may only reshape the timeline: at 1, 4, and 16 streams
/// every query returns the serial rows, and a second identical run
/// replays the whole schedule bit-for-bit.
#[test]
fn streams_replay_and_match_serial_oracle() {
    neutralize_env();
    let oracle = serial_oracle(2, None);
    for n in [1usize, 4, 16] {
        let streams = make_streams(n, 3);
        let run = || {
            let server = load_server(2, None);
            run_on(&server, &streams)
        };
        let first = run();
        assert_rows_match_oracle(&first, &streams, &oracle);
        assert_eq!(
            first.completed,
            n * 3,
            "{n} streams: all statements complete"
        );
        let second = run();
        assert_eq!(
            fingerprint(&first),
            fingerprint(&second),
            "{n}-stream schedule must replay exactly"
        );
    }
}

/// The executor thread count is invisible to the serving layer: rows,
/// verdicts, and the entire sim-time schedule are identical at 1, 2,
/// and 8 threads.
#[test]
fn thread_count_never_changes_serving_schedule() {
    neutralize_env();
    let streams = make_streams(4, 3);
    let baseline = run_on(&load_server(1, None), &streams);
    for threads in [2usize, 8] {
        let report = run_on(&load_server(threads, None), &streams);
        assert_eq!(
            fingerprint(&baseline),
            fingerprint(&report),
            "serving schedule diverged at {threads} threads"
        );
    }
}

/// A seeded fault plan (recovery on) leaves rows byte-identical to the
/// fault-free serial oracle, and replays its perturbed schedule
/// exactly.
#[test]
fn faulted_serving_replays_exactly() {
    neutralize_env();
    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xBADD_CAFE;
        p.daemon_kill_prob = 0.4;
        p.dfs_read_error_prob = 0.05;
        p.dfs_slow_prob = 0.1;
        p.dfs_slow_ms = 4.0;
    });
    let oracle = serial_oracle(2, None);
    let streams = make_streams(4, 3);
    let first = run_on(&load_server(2, Some(&plan)), &streams);
    assert_rows_match_oracle(&first, &streams, &oracle);
    let second = run_on(&load_server(2, Some(&plan)), &streams);
    assert_eq!(
        fingerprint(&first),
        fingerprint(&second),
        "faulted schedule must replay exactly"
    );
}

fn run_on(server: &HiveServer, streams: &[QueryStream]) -> ServingReport {
    hive_warehouse::run_streams(server, streams, &ServingOptions::default())
}

/// Triggers fire AT their threshold on the timeline: a move transfers
/// the slot exactly `threshold` ms after admission; a kill ends the
/// query there.
#[test]
fn triggers_fire_at_threshold_on_the_timeline() {
    neutralize_env();

    // Move: the paper's downgrade rule, threshold lowered to 1 ms so
    // every real query outlives it.
    let server = load_server(1, None);
    let mut plan = hive_llap::ResourcePlan::paper_example();
    plan.triggers[0].total_runtime_ms_threshold = 1;
    server.activate_resource_plan(plan).unwrap();
    let streams = vec![QueryStream {
        name: "bi".into(),
        user: "alice".into(),
        application: Some("visualization_app".into()),
        groups: vec![],
        statements: vec![tpcds::queries()[0].sql.clone()],
    }];
    let report = run_on(&server, &streams);
    let o = &report.outcomes[0];
    assert_eq!(o.verdict, QueryVerdict::Completed);
    assert_eq!(
        o.moves,
        vec![(1.0, "etl".to_string())],
        "move fires at the threshold"
    );
    assert_eq!(
        o.pool.as_deref(),
        Some("etl"),
        "slot finishes in the pool it moved to"
    );
    assert!(o.solo_sim_ms > 1.0, "query must outlive the threshold");

    // Kill: same shape, Kill action — the query ends AT the threshold,
    // not at its natural completion.
    let server = load_server(1, None);
    let mut plan = hive_llap::ResourcePlan::paper_example();
    plan.triggers = vec![hive_llap::Trigger {
        name: "reaper".into(),
        pool: "bi".into(),
        total_runtime_ms_threshold: 1,
        action: hive_llap::TriggerAction::Kill,
    }];
    server.activate_resource_plan(plan).unwrap();
    let report = run_on(&server, &streams);
    let o = &report.outcomes[0];
    assert_eq!(
        o.verdict,
        QueryVerdict::Killed {
            at_ms: 1.0,
            trigger: "reaper".into()
        }
    );
    assert_eq!(
        o.finished_ms,
        o.admitted_ms.unwrap() + 1.0,
        "killed AT the threshold"
    );
    assert_eq!(report.killed, 1);
    // The freed slot is accounted: nothing left running anywhere.
    assert_eq!(server.workload(|w| w.total_running()), 0);
}

/// A saturated pool queues instead of hard-rejecting: the waiter is
/// admitted the instant a slot frees (FIFO), or rejected at its
/// deadline when patience runs out.
#[test]
fn saturated_pool_queues_then_admits() {
    neutralize_env();
    let single = hive_llap::ResourcePlan {
        name: "single".into(),
        pools: vec![hive_llap::Pool {
            name: "only".into(),
            alloc_fraction: 1.0,
            query_parallelism: 1,
        }],
        mappings: vec![],
        triggers: vec![],
        default_pool: Some("only".into()),
    };
    let streams = make_streams(2, 1);

    // Patient waiter: queued at 0, admitted exactly when the first
    // query finishes.
    let server = load_server(1, None);
    server.activate_resource_plan(single.clone()).unwrap();
    let report = run_on(&server, &streams);
    assert_eq!(report.completed, 2);
    let (a, b) = (&report.outcomes[0], &report.outcomes[1]);
    assert_eq!(a.wait_ms, 0.0, "first in wins the only slot");
    assert!(b.wait_ms > 0.0, "second must queue");
    assert_eq!(
        b.admitted_ms.unwrap(),
        a.finished_ms,
        "waiter admitted the instant the slot frees"
    );
    assert_eq!(report.max_wait_ms, b.wait_ms);

    // Impatient waiter: zero patience → rejected at its deadline.
    let server = load_server(1, None);
    server.activate_resource_plan(single).unwrap();
    let report = hive_warehouse::run_streams(
        &server,
        &streams,
        &ServingOptions {
            admission_max_wait_ms: 0.0,
        },
    );
    assert_eq!(report.completed, 1);
    assert_eq!(report.rejected, 1);
    let rej = report
        .outcomes
        .iter()
        .find(|o| matches!(o.verdict, QueryVerdict::Rejected { .. }))
        .unwrap();
    assert_eq!(rej.pool, None);
}

/// Env-gated sweep for `scripts/verify.sh --wm-sweep`: reads
/// `HIVE_WM_STREAMS` (stream count; unset → no-op) plus the usual
/// `HIVE_PARALLEL_THREADS` / `HIVE_FAULT_*` knobs, runs the streams,
/// and differentials every completed query against a fresh serial
/// server under the same environment.
#[test]
fn env_wm_sweep() {
    let Some(n) = std::env::var("HIVE_WM_STREAMS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    else {
        return;
    };
    let fault = FaultPlan::from_env();
    // Conf-level threads stay on auto: HIVE_PARALLEL_THREADS (set by
    // the sweep driver) steers both the streams and the oracle.
    let load = || {
        let server = HiveServer::new(HiveConf::v3_1());
        tpcds::load(&server, scale(), 0xDA7A).unwrap();
        if let Some(plan) = &fault {
            server.set_conf(|c| c.fault = plan.clone());
        }
        server
    };
    let streams = make_streams(n, 3);
    let report = run_on(&load(), &streams);
    assert_eq!(report.completed, n * 3, "sweep: every statement completes");
    let oracle_server = load();
    for o in &report.outcomes {
        let sql = &streams[o.stream].statements[o.index];
        let expect = oracle_server.session().execute(sql).unwrap().display_rows();
        let got = o.result.as_ref().expect("completed").display_rows();
        assert_eq!(
            &got, &expect,
            "sweep: stream {} stmt {} diverged",
            o.stream, o.index
        );
    }
    // Replay: the same inputs reproduce the schedule bit-for-bit.
    let again = run_on(&load(), &streams);
    assert_eq!(
        fingerprint(&report),
        fingerprint(&again),
        "sweep replay diverged"
    );
    eprintln!(
        "wm-sweep: {n} streams → {} completed in {:.1} sim-ms ({:.0} q/h), max wait {:.1} ms",
        report.completed, report.span_ms, report.queries_per_hour, report.max_wait_ms
    );
}
