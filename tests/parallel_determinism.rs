//! Parallel determinism: `execute()` must produce byte-identical rows
//! for any `hive.exec.parallel.threads` setting — morsel-driven
//! parallelism may only change wall-clock time, never results — and
//! that must hold with an active fault plan (daemon deaths mid-query)
//! exactly as it does fault-free.

use hive_warehouse::benchdata::tpcds::{self, TpcdsScale};
use hive_warehouse::{FaultPlan, HiveConf, HiveServer};

/// The env knob overrides the conf field (so `HIVE_PAR_SWEEP` can steer
/// whole test runs); this binary manages thread counts itself, so drop
/// the variable once before any server is built.
fn neutralize_env() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| std::env::remove_var("HIVE_PARALLEL_THREADS"));
}

/// Big enough that scans span many row groups and the row-range
/// operators (aggregate build, join probe) split into several morsels.
fn scale() -> TpcdsScale {
    TpcdsScale {
        days: 8,
        items: 150,
        customers: 200,
        stores: 4,
        sales_per_day: 1500,
        return_rate: 0.1,
    }
}

fn load_server(threads: usize) -> HiveServer {
    neutralize_env();
    let mut conf = HiveConf::v3_1();
    conf.parallel_threads = threads;
    let server = HiveServer::new(conf);
    tpcds::load(&server, scale(), 0xDA7A).unwrap();
    server
}

/// Every curated TPC-DS query returns identical rows at 1, 2, and 8
/// threads.
#[test]
fn thread_count_never_changes_results() {
    let queries = tpcds::queries();
    let baseline_server = load_server(1);
    let baseline: Vec<(String, Vec<String>)> = queries
        .iter()
        .map(|q| {
            let r = baseline_server.session().execute(&q.sql).unwrap();
            (q.id.to_string(), r.display_rows())
        })
        .collect();
    for threads in [2, 8] {
        let server = load_server(threads);
        for (id, expected) in &baseline {
            let q = queries.iter().find(|q| q.id == id.as_str()).unwrap();
            let got = server.session().execute(&q.sql).unwrap().display_rows();
            assert_eq!(&got, expected, "{id} diverged at {threads} threads");
        }
    }
}

/// A daemon-death fault plan (recovery enabled) under each thread count
/// still yields the fault-free rows, and replaying the same plan at the
/// same thread count reproduces simulated time bit-for-bit.
#[test]
fn daemon_death_plan_is_deterministic_across_thread_counts() {
    neutralize_env();
    let query = &tpcds::queries()[0]; // q3: scan + join + group + order
    let baseline = load_server(1)
        .session()
        .execute(&query.sql)
        .unwrap()
        .display_rows();
    assert!(!baseline.is_empty());

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xBADD_CAFE;
        p.daemon_kill_prob = 0.8;
        p.dfs_read_error_prob = 0.05;
        p.dfs_slow_prob = 0.1;
        p.dfs_slow_ms = 4.0;
    });
    let run = |threads: usize| -> (Vec<String>, f64, u64) {
        let server = load_server(threads);
        server.set_conf(|c| c.fault = plan.clone());
        let r = server.session().execute(&query.sql).unwrap();
        (r.display_rows(), r.sim_ms, r.fragment_retries)
    };
    for threads in [1, 2, 8] {
        let (rows, sim_ms, retries) = run(threads);
        assert_eq!(rows, baseline, "faulted run diverged at {threads} threads");
        let (rows2, sim_ms2, retries2) = run(threads);
        assert_eq!(rows2, baseline);
        assert_eq!(
            (sim_ms2, retries2),
            (sim_ms, retries),
            "fault penalty must replay exactly at {threads} threads"
        );
    }
}
