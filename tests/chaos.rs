//! Chaos tests: deterministic fault injection + fragment-level
//! recovery, end to end through the public API.
//!
//! The invariant under test: because recovery re-runs deterministic
//! work, *any* seeded fault plan with recovery enabled must yield
//! results byte-identical to the fault-free run — faults may only move
//! simulated time and the retry/failover counters.
//!
//! A failing seed replays outside the test via `HIVE_FAULT_SEED` (see
//! `FaultPlan::from_env` and scripts/verify.sh).

use hive_warehouse::{FaultPlan, HiveConf, HiveServer};
use proptest::prelude::*;

/// Stand up a warehouse with a star-schema-lite dataset: a fact table
/// with enough rows for several row groups plus a small dimension.
fn load_warehouse() -> HiveServer {
    let server = HiveServer::new(HiveConf::v3_1());
    let session = server.session();
    session
        .execute("CREATE TABLE region_dim (r_id INT, r_name STRING)")
        .unwrap();
    session
        .execute(
            "INSERT INTO region_dim VALUES \
             (0, 'AFRICA'), (1, 'AMERICA'), (2, 'ASIA'), (3, 'EUROPE'), (4, 'MIDDLE EAST')",
        )
        .unwrap();
    session
        .execute("CREATE TABLE sales (s_id INT, r_id INT, qty INT, amount DECIMAL(12,2))")
        .unwrap();
    // Deterministic synthetic rows, inserted in a few batches so the
    // fact table spans multiple files.
    for batch in 0..4 {
        let values: Vec<String> = (0..75)
            .map(|i| {
                let id = batch * 75 + i;
                format!(
                    "({id}, {}, {}, {}.{:02})",
                    id % 5,
                    (id * 7) % 23 + 1,
                    (id * 13) % 900 + 10,
                    id % 100,
                )
            })
            .collect();
        session
            .execute(&format!("INSERT INTO sales VALUES {}", values.join(", ")))
            .unwrap();
    }
    server
}

const QUERY: &str = "SELECT r_name, COUNT(*), SUM(amount), SUM(qty) \
                     FROM sales JOIN region_dim ON sales.r_id = region_dim.r_id \
                     WHERE qty > 3 \
                     GROUP BY r_name ORDER BY r_name";

/// Run the reference query on a freshly-loaded warehouse under `plan`
/// (applied after load, so faults hit only the query), returning
/// `(rows, sim_ms, fragment_retries, failovers, live_nodes)`.
fn run_under_plan(plan: &FaultPlan) -> hive_warehouse::Result<(Vec<String>, f64, u64, u64, usize)> {
    let server = load_warehouse();
    server.set_conf(|c| c.fault = plan.clone());
    let r = server.session().execute(QUERY)?;
    Ok((
        r.display_rows(),
        r.sim_ms,
        r.fragment_retries,
        r.failovers,
        server.llap().live_node_count(),
    ))
}

/// The ISSUE acceptance scenario: a TPC-DS-style aggregation query
/// loses an LLAP daemon mid-query under a fixed fault seed. The result
/// must be identical to the fault-free run, the trace must report the
/// failover, and the simulated-latency penalty must reproduce exactly
/// from the seed.
#[test]
fn daemon_loss_mid_query_recovers_with_identical_results() {
    let (baseline, base_ms, _, _, base_live) = run_under_plan(&FaultPlan::none()).unwrap();
    assert!(!baseline.is_empty());

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xC0FFEE;
        p.daemon_kill_prob = 1.0; // every dispatch roll kills a daemon
    });
    let (rows, sim_ms, retries, failovers, live) = run_under_plan(&plan).unwrap();

    assert_eq!(rows, baseline, "recovery must not change results");
    assert!(failovers >= 1, "expected at least one daemon failover");
    assert!(retries >= failovers, "failovers re-run fragments");
    assert!(live < base_live, "the dead daemon stays blacklisted");
    assert!(
        sim_ms > base_ms,
        "recovery must cost simulated time: {sim_ms} vs {base_ms}"
    );

    // Same seed, fresh warehouse: the penalty replays bit-for-bit.
    let (rows2, sim_ms2, retries2, failovers2, _) = run_under_plan(&plan).unwrap();
    assert_eq!(rows2, baseline);
    assert_eq!(sim_ms2, sim_ms, "fault penalty must be deterministic");
    assert_eq!((retries2, failovers2), (retries, failovers));
}

/// With recovery disabled, the same seed surfaces the daemon death as
/// a `Transient`-classified error instead of failing over.
#[test]
fn recovery_disabled_surfaces_transient_error() {
    let plan = FaultPlan::none().with(|p| {
        p.seed = 0xC0FFEE;
        p.daemon_kill_prob = 1.0;
        p.recovery_enabled = false;
    });
    let err = run_under_plan(&plan).unwrap_err();
    assert_eq!(err.kind(), "TRANSIENT", "got: {err}");
    assert!(err.is_transient());
}

/// §5.1: any node can process any fragment — queries complete on a
/// single surviving daemon after the rest of the fleet is killed.
#[test]
fn queries_survive_on_last_daemon() {
    let (baseline, ..) = run_under_plan(&FaultPlan::none()).unwrap();

    let server = load_warehouse();
    let nodes = server.llap().nodes();
    for node in 0..nodes - 1 {
        assert!(server.llap().kill_daemon(node));
    }
    assert_eq!(server.llap().live_node_count(), 1);
    assert_eq!(
        server.llap().total_executors(),
        server.llap().executors_per_node()
    );

    let r = server.session().execute(QUERY).unwrap();
    assert_eq!(r.display_rows(), baseline);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any seeded fault plan (recovery enabled) yields byte-identical
    /// results to the fault-free run.
    #[test]
    fn any_fault_plan_preserves_results(
        seed in any::<u64>(),
        dfs_read in 0.0f64..0.25,
        dfs_slow in 0.0f64..0.3,
        slow_ms in 1.0f64..50.0,
        daemon_kill in 0.0f64..0.15,
        corrupt in 0.0f64..0.3,
        fragment in 0.0f64..0.25,
    ) {
        let plan = FaultPlan::none().with(|p| {
            p.seed = seed;
            p.dfs_read_error_prob = dfs_read;
            p.dfs_slow_prob = dfs_slow;
            p.dfs_slow_ms = slow_ms;
            p.daemon_kill_prob = daemon_kill;
            p.cache_corruption_prob = corrupt;
            p.fragment_failure_prob = fragment;
        });
        let (baseline, ..) = run_under_plan(&FaultPlan::none()).unwrap();
        let (rows, sim_ms, ..) = run_under_plan(&plan).unwrap();
        prop_assert_eq!(&rows, &baseline);
        // Replay: the same plan reproduces the same simulated time.
        let (rows2, sim_ms2, ..) = run_under_plan(&plan).unwrap();
        prop_assert_eq!(&rows2, &baseline);
        prop_assert_eq!(sim_ms2, sim_ms);
    }
}

/// Spill-targeted chaos: a tiny memory budget forces the reference
/// query's group-by through the spill path while a targeted fault fails
/// every spill-file read and write twice before healing (plus
/// probabilistic write faults on top). The recovery ladder must retry
/// the spill I/O to byte-identical rows, and the simulated-time penalty
/// must replay exactly from the seed.
#[test]
fn spill_io_faults_recover_with_identical_results() {
    let (baseline, ..) = run_under_plan(&FaultPlan::none()).unwrap();

    let run = |plan: &FaultPlan| {
        let server = load_warehouse();
        server.set_conf(|c| {
            c.fault = plan.clone();
            c.memory_per_query_bytes = 4096;
        });
        let r = server.session().execute(QUERY).unwrap();
        (
            r.display_rows(),
            r.sim_ms,
            r.bytes_spilled,
            r.peak_memory_bytes,
        )
    };

    // Fault-free budgeted run: the query must actually spill.
    let (rows, base_ms, spilled, peak) = run(&FaultPlan::none());
    assert_eq!(rows, baseline, "spilling must not change results");
    assert!(spilled > 0, "tiny budget must force a spill");
    assert!(peak > 0, "the broker must have tracked working memory");

    let plan = FaultPlan::none().with(|p| {
        p.seed = 0x5B111;
        p.fail_path_substrings = vec!["spill".into()];
        p.path_fail_count = 2;
        p.dfs_write_error_prob = 0.25;
    });
    let (rows, sim_ms, spilled, _) = run(&plan);
    assert_eq!(rows, baseline, "spill-fault recovery changed results");
    assert!(spilled > 0, "faults must not suppress the spill itself");
    assert!(
        sim_ms > base_ms,
        "retried spill I/O must cost simulated time: {sim_ms} vs {base_ms}"
    );

    // Same seed, fresh warehouse: the penalty replays bit-for-bit.
    let (rows2, sim_ms2, ..) = run(&plan);
    assert_eq!(rows2, baseline);
    assert_eq!(sim_ms2, sim_ms, "spill fault penalty must be deterministic");
}

/// The RAII spill-file guard: with recovery disabled, a never-healing
/// targeted fault aborts the query mid-spill. The unwind must still
/// delete every spill file — no orphans under the spill root.
#[test]
fn aborted_spill_leaves_no_orphan_files() {
    let server = load_warehouse();
    server.set_conf(|c| {
        c.memory_per_query_bytes = 4096;
        c.fault = FaultPlan::none().with(|p| {
            p.seed = 0xDEAD;
            p.fail_path_substrings = vec!["spill".into()];
            p.path_fail_count = u32::MAX; // never heals
            p.recovery_enabled = false;
        });
    });
    let err = server.session().execute(QUERY).unwrap_err();
    assert!(
        err.is_transient(),
        "expected the injected fault, got: {err}"
    );
    let leftovers = server
        .fs()
        .list_files_recursive(&hive_warehouse::DfsPath::new("/tmp/hive/spill"));
    assert!(
        leftovers.is_empty(),
        "orphan spill files after abort: {leftovers:?}"
    );
}

/// `HIVE_FAULT_SEED`-driven chaos replay for CI (scripts/verify.sh sets
/// the variable); a no-op when the variable is unset.
#[test]
fn env_seeded_chaos_replay() {
    let Some(plan) = FaultPlan::from_env() else {
        return;
    };
    let (baseline, ..) = run_under_plan(&FaultPlan::none()).unwrap();
    match run_under_plan(&plan) {
        Ok((rows, _, retries, failovers, _)) => {
            assert_eq!(rows, baseline, "fault recovery changed results");
            eprintln!(
                "chaos replay seed={}: ok ({retries} retries, {failovers} failovers)",
                plan.seed
            );
        }
        Err(e) if !plan.recovery_enabled => {
            eprintln!("chaos replay seed={} (no recovery): error {e}", plan.seed);
        }
        Err(e) => panic!("chaos replay seed={} failed: {e}", plan.seed),
    }
}
